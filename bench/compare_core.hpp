// Core of the bench_compare gate, factored out of the binary so the trend
// logic is unit-testable (tests/bench_compare_trend_test.cpp) and the CLI
// in bench_compare.cpp stays a thin wrapper.
//
// Two gating modes over BENCH_*.json perf-trajectory reports:
//   * single-baseline: new rates vs one old report, threshold-gated — the
//     original gate;
//   * trend (--trend=N): new rates vs the per-experiment *median* of the
//     last N history reports.  One noisy baseline run (a machine hiccup in
//     either direction) cannot move a median anchored by N-1 sane runs,
//     so the threshold can sit tighter without flaking — the ROADMAP
//     trend-gating item.
//
// Count-drift checking (the determinism tripwire) always compares against
// the *most recent* same-seed history report: counts are exact, medians
// are not meaningful for them.
//
// Besides bench_report's BENCH_*.json, this parser also accepts the sweep
// subsystem's merged reports (src/sweep/merge.hpp): a merged sweep report
// is BENCH-schema with "bench": "sweep", one experiment block per config
// group ("name" = the group key, e.g. "HID-CAN/l0.50/n64"), summed
// same-seed counts in "events"/"messages", and zeroed wall-clock rates —
// merged reports are byte-deterministic across machines and worker counts,
// so rates are meaningless there but the count tripwire is exact.  Extra
// per-group keys (t_ratio_mean, f_ratio_ci95, ...) are simply ignored
// here.  Comparing two merged reports of the same spec with
// --check-counts=1 is a whole-grid trajectory gate.
#pragma once

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "src/common/json_mini.hpp"

namespace soc::bench {

struct PerfExperiment {
  std::string name;
  double wall_seconds = 0.0;
  double events = 0.0;
  double events_per_sec = 0.0;
  double messages = 0.0;
  double messages_per_sec = 0.0;
  /// Memory-layout density (PR 7 schema addition).  Defaults to 1.0 when
  /// absent so reports predating the field compare cleanly; never gated —
  /// the stress tests own the density bound, the gate owns rates/counts.
  double slot_span_ratio = 1.0;
};

struct PerfReport {
  double nodes = 0.0;
  double hours = 0.0;
  double seed = 0.0;
  /// PR 7 schema addition; 0.0 when the report predates the field.
  double peak_rss_bytes_per_node = 0.0;
  std::vector<PerfExperiment> experiments;
};

/// Bounded key lookup, shared with the sweep parser (src/common/json_mini).
using json_mini::find_number;

/// Parse one BENCH_*.json body.  Returns nullopt (and sets `err`) when no
/// experiment block is found.
inline std::optional<PerfReport> parse_report_text(const std::string& text,
                                                   std::string* err) {
  PerfReport r;
  r.nodes = find_number(text, "nodes", 0).value_or(0.0);
  r.hours = find_number(text, "hours", 0).value_or(0.0);
  r.seed = find_number(text, "seed", 0).value_or(0.0);
  r.peak_rss_bytes_per_node =
      find_number(text, "peak_rss_bytes_per_node", 0).value_or(0.0);

  std::size_t pos = 0;
  for (;;) {
    const std::string needle = "\"name\": \"";
    const std::size_t at = text.find(needle, pos);
    if (at == std::string::npos) break;
    const std::size_t name_start = at + needle.size();
    const std::size_t name_end = text.find('"', name_start);
    if (name_end == std::string::npos) break;
    // Fields must come from this experiment's block: bound the search at
    // the next experiment's "name" key (or end of file for the last one).
    std::size_t block_end = text.find(needle, name_end);
    if (block_end == std::string::npos) block_end = text.size();
    PerfExperiment e;
    e.name = text.substr(name_start, name_end - name_start);
    e.wall_seconds =
        find_number(text, "wall_seconds", name_end, block_end).value_or(0.0);
    e.events = find_number(text, "events", name_end, block_end).value_or(0.0);
    e.events_per_sec =
        find_number(text, "events_per_sec", name_end, block_end).value_or(0.0);
    e.messages =
        find_number(text, "messages", name_end, block_end).value_or(0.0);
    e.messages_per_sec = find_number(text, "messages_per_sec", name_end,
                                     block_end).value_or(0.0);
    e.slot_span_ratio = find_number(text, "slot_span_ratio", name_end,
                                    block_end).value_or(1.0);
    r.experiments.push_back(std::move(e));
    pos = name_end;
  }
  if (r.experiments.empty()) {
    if (err != nullptr) *err = "no experiments found";
    return std::nullopt;
  }
  return r;
}

inline const PerfExperiment* find_experiment(const PerfReport& r,
                                             const std::string& name) {
  for (const auto& e : r.experiments) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

inline double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Collapse the last `last_n` history reports into one baseline: for every
/// experiment of the most recent report, the rate fields become the median
/// over the history reports that contain that experiment; counts (and the
/// config/seed header) are taken from the most recent report verbatim, so
/// the count-drift tripwire still compares exact same-seed integers.
inline PerfReport median_baseline(const std::vector<PerfReport>& history,
                                  std::size_t last_n) {
  const std::size_t n = std::min(last_n, history.size());
  const PerfReport& newest = history.back();
  PerfReport base = newest;
  for (PerfExperiment& e : base.experiments) {
    std::vector<double> ev_rates;
    std::vector<double> msg_rates;
    for (std::size_t i = history.size() - n; i < history.size(); ++i) {
      if (const PerfExperiment* h = find_experiment(history[i], e.name)) {
        ev_rates.push_back(h->events_per_sec);
        msg_rates.push_back(h->messages_per_sec);
      }
    }
    if (!ev_rates.empty()) {
      e.events_per_sec = median_of(ev_rates);
      e.messages_per_sec = median_of(msg_rates);
    }
  }
  return base;
}

struct CompareOutcome {
  int regressions = 0;
  int count_drifts = 0;
};

/// Rate + count comparison of `fresh` against `base`, printing the table
/// to stdout (the bench_compare CLI output).  `same_seed` gates the count
/// tripwire; `check_counts` only selects the drift note's styling (the
/// caller decides whether drifts fail the run).
inline CompareOutcome compare_reports(const PerfReport& base,
                                      const PerfReport& fresh,
                                      double threshold, bool same_seed,
                                      bool check_counts = false) {
  CompareOutcome out;
  std::printf("%-14s %14s %14s %8s %14s %14s %8s\n", "config", "old-ev/s",
              "new-ev/s", "ratio", "old-msg/s", "new-msg/s", "ratio");
  // A baseline experiment missing from the new report is the most extreme
  // regression of all (the benchmark vanished) — never pass it silently.
  for (const PerfExperiment& e_old : base.experiments) {
    if (find_experiment(fresh, e_old.name) == nullptr) {
      std::printf("%-14s MISSING from new report  << REGRESSION\n",
                  e_old.name.c_str());
      ++out.regressions;
    }
  }
  for (const PerfExperiment& e_new : fresh.experiments) {
    const PerfExperiment* e_old = find_experiment(base, e_new.name);
    if (e_old == nullptr) {
      std::printf("%-14s (new; no baseline)\n", e_new.name.c_str());
      continue;
    }
    const double ev_ratio = e_old->events_per_sec > 0.0
                                ? e_new.events_per_sec / e_old->events_per_sec
                                : 1.0;
    const double msg_ratio =
        e_old->messages_per_sec > 0.0
            ? e_new.messages_per_sec / e_old->messages_per_sec
            : 1.0;
    const bool regressed =
        ev_ratio < 1.0 - threshold || msg_ratio < 1.0 - threshold;
    std::printf("%-14s %14.0f %14.0f %7.2fx %14.0f %14.0f %7.2fx%s\n",
                e_new.name.c_str(), e_old->events_per_sec,
                e_new.events_per_sec, ev_ratio, e_old->messages_per_sec,
                e_new.messages_per_sec, msg_ratio,
                regressed ? "  << REGRESSION" : "");
    if (regressed) ++out.regressions;
    if (same_seed &&
        (e_old->events != e_new.events || e_old->messages != e_new.messages)) {
      ++out.count_drifts;
      std::printf(
          "%-14s note: same-seed counts drifted (events %.0f -> %.0f, "
          "messages %.0f -> %.0f)%s\n",
          "", e_old->events, e_new.events, e_old->messages, e_new.messages,
          check_counts ? "  << DRIFT" : " — trajectory changed");
    }
  }
  // Memory-layout fields are informational only (0.0 / 1.0 when a report
  // predates them) — printed for the eyeball, never counted as regressions.
  if (base.peak_rss_bytes_per_node > 0.0 ||
      fresh.peak_rss_bytes_per_node > 0.0) {
    std::printf("peak RSS/node: old %.0f B, new %.0f B\n",
                base.peak_rss_bytes_per_node, fresh.peak_rss_bytes_per_node);
  }
  return out;
}

}  // namespace soc::bench
