// sweep_run — the sweep orchestration CLI (src/sweep/): multi-process
// experiment sweeps with deterministic shards, crash-resume, and a merged
// BENCH-style report.
//
//   sweep_run [--mode=orchestrate] --dir D --shards N --workers W <spec>
//   sweep_run --mode=local        --dir D --shards N            <spec>
//   sweep_run --mode=worker       --dir D --shards N --shard K  <spec>
//   sweep_run --mode=plan         --dir D --shards N            <spec>
//   sweep_run --mode=merge        --dir D --shards N [--merged P] <spec>
//
// --trace=PATH (worker and local modes) records every experiment's
// query/task spans into one Chrome trace-event file, one lane per sweep
// cell; tracing is a pure observer, so shard bytes are unchanged.
//
// <spec> (the grid; every flag takes a comma-separated list):
//   --preset fig6                            (a paper figure/table/ablation
//                                            grid as spec defaults; any
//                                            explicit flag overrides its
//                                            axis — see --preset=list)
//   --protocols HID-CAN,Newscast,KHDN-CAN   --lambdas 0.3,0.5
//   --node-counts 96,384                    --scenarios none,flash
//   --churns 0.0,0.5                        --variants base,delta4
//   --servings off,closed+zipf              (serving-workload presets:
//                                            off|open|closed|zipf|diurnal,
//                                            '+'-composable — see `--preset
//                                            serving`; every cell carries
//                                            per-query latency percentiles
//                                            in the merged report)
//   --repeats 3 --base-seed 1 --hours 6
//
// The paper's figures reproduce through the presets: `sweep_run --preset
// fig4 --dir out/fig4` (likewise fig5..fig8, table3, ablation-*) runs the
// figure's grid sharded + resumable and prints its hour-by-hour tables
// after the merge.  --series=0/1 forces the figure tables off/on.
//
// Modes:
//   orchestrate  spawn W concurrent worker processes for the shards that
//                lack a valid result file (resume-aware), then merge.
//                Re-running after a crash re-runs only unfinished shards.
//   local        same pipeline, all shards in this process (the
//                single-process reference the determinism tests diff
//                against; also the no-fork fallback).
//   worker       execute one shard and write <dir>/shard-K.json
//                atomically — run these by hand on other machines, then
//                `--mode=merge` where the files land.
//   plan         write the manifest and print each shard's worker command
//                line without running anything.
//   merge        fold all shard files into the merged report
//                (default <dir>/SWEEP_merged.json) + summary table.
//
// The merged report is byte-identical for a given spec regardless of
// worker count or shard completion order; bench_compare accepts it
// (--check-counts=1 diffs of two merged reports gate the whole grid's
// trajectory).
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/obs/trace.hpp"
#include "src/sweep/merge.hpp"
#include "src/sweep/runner.hpp"

namespace {

using namespace soc;

/// mkdir -p (each component; EEXIST is fine).
bool mkdir_p(const std::string& path) {
  std::string cur;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!cur.empty() && cur != ".") {
        if (mkdir(cur.c_str(), 0777) != 0 && errno != EEXIST) return false;
      }
    }
    if (i < path.size()) cur += path[i];
  }
  return true;
}

/// This binary's path, for respawning workers.
std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

int run_merge(const std::string& dir, const sweep::SweepSpec& spec,
              std::size_t shards_total, const std::string& merged_path,
              bool render_series) {
  std::string err;
  const auto report = sweep::merge_shards(dir, spec, shards_total, &err);
  if (!report.has_value()) {
    std::fprintf(stderr, "sweep_run: merge failed: %s\n", err.c_str());
    return 1;
  }
  if (!sweep::write_merged_report(merged_path, spec, *report)) {
    std::fprintf(stderr, "sweep_run: cannot write %s\n", merged_path.c_str());
    return 1;
  }
  sweep::print_merged_table(*report);
  if (render_series) sweep::print_series_tables(*report);
  std::printf("\nwrote %s\n", merged_path.c_str());
  return 0;
}

void list_presets() {
  std::fprintf(stderr, "sweep_run: available presets:\n");
  for (const sweep::SweepPreset& p : sweep::sweep_presets()) {
    std::fprintf(stderr, "  %-20s %s\n", p.name, p.what);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string mode = args.get("mode", "orchestrate");
  const std::string dir = args.get("dir", "sweep-out");
  const auto shards_total =
      static_cast<std::size_t>(args.get_int("shards", 8));
  if (shards_total == 0) {
    std::fprintf(stderr, "sweep_run: --shards must be >= 1\n");
    return 2;
  }
  // A preset seeds the spec defaults; explicit axis flags still override.
  const std::string preset_name = args.get("preset", "");
  const sweep::SweepPreset* preset = nullptr;
  if (preset_name == "list") {
    list_presets();
    return 0;
  }
  if (!preset_name.empty()) {
    preset = sweep::preset_by_name(preset_name);
    if (preset == nullptr) {
      std::fprintf(stderr, "sweep_run: unknown --preset '%s'\n",
                   preset_name.c_str());
      list_presets();
      return 2;
    }
  }
  const auto spec_opt =
      preset != nullptr
          ? sweep::SweepSpec::from_args(args, preset->spec)
          : sweep::SweepSpec::from_args(args);
  if (!spec_opt.has_value()) return 2;
  const sweep::SweepSpec spec = *spec_opt;
  // Figure presets print their hour-by-hour tables after the merge;
  // --series overrides in either direction.
  const bool render_series =
      args.get_int("series", preset != nullptr && preset->render_series ? 1
                                                                        : 0)
      != 0;
  const std::string merged_path =
      args.get("merged", dir + "/SWEEP_merged.json");
  if (!mkdir_p(dir)) {
    std::fprintf(stderr, "sweep_run: cannot create %s\n", dir.c_str());
    return 2;
  }

  // Every mode that reads or writes shard artifacts must agree with
  // whatever sweep already lives in --dir.
  if (!sweep::dir_matches_sweep(dir, spec.fingerprint(), shards_total)) {
    return 2;
  }

  const std::string trace_path = args.get("trace", "");
  obs::Tracer tracer;

  if (mode == "worker") {
    const std::int64_t shard_id = args.get_int("shard", -1);
    if (shard_id < 0 || static_cast<std::size_t>(shard_id) >= shards_total) {
      std::fprintf(stderr, "sweep_run: worker mode needs --shard in [0,%zu)\n",
                   shards_total);
      return 2;
    }
    const auto shards = sweep::partition(spec, shards_total);
    const sweep::Shard& shard = shards[static_cast<std::size_t>(shard_id)];
    if (!trace_path.empty()) obs::install_tracer(&tracer);
    const sweep::ShardResult result =
        sweep::run_shard(shard, spec.fingerprint(), shards_total);
    if (!trace_path.empty()) {
      obs::install_tracer(nullptr);
      if (!tracer.export_json(trace_path)) {
        std::fprintf(stderr, "sweep_run: cannot write %s\n",
                     trace_path.c_str());
        return 1;
      }
      std::printf("wrote %s (%zu trace events)\n", trace_path.c_str(),
                  tracer.event_count());
    }
    if (!sweep::write_shard_result(dir, result)) {
      std::fprintf(stderr, "sweep_run: cannot write %s\n",
                   sweep::shard_path(dir, shard.id).c_str());
      return 1;
    }
    std::printf("shard %lld: %zu experiment(s) -> %s\n",
                static_cast<long long>(shard_id), result.cells.size(),
                sweep::shard_path(dir, shard.id).c_str());
    return 0;
  }

  if (mode == "merge") {
    return run_merge(dir, spec, shards_total, merged_path, render_series);
  }

  if (mode == "plan") {
    const auto shards = sweep::partition(spec, shards_total);
    sweep::Manifest manifest;
    manifest.spec_fingerprint = spec.fingerprint();
    manifest.spec = spec.describe();
    manifest.shards_total = shards_total;
    std::string spec_flags;
    for (const std::string& a : spec.to_args()) spec_flags += " " + a;
    std::printf("# %s\n# %zu cells over %zu shards; per-shard worker "
                "commands:\n",
                manifest.spec.c_str(), spec.cell_count(), shards_total);
    for (const auto& shard : shards) {
      const bool done = sweep::shard_complete(dir, shard,
                                              manifest.spec_fingerprint,
                                              shards_total);
      manifest.shards.push_back(
          {shard.id, shard.cells.size(), done ? "done" : "pending"});
      std::printf("%s sweep_run --mode=worker --dir=%s --shards=%zu "
                  "--shard=%zu%s\n",
                  done ? "# done:" : "", dir.c_str(), shards_total, shard.id,
                  spec_flags.c_str());
    }
    if (!sweep::write_manifest(dir, manifest)) {
      std::fprintf(stderr, "sweep_run: cannot write manifest in %s\n",
                   dir.c_str());
      return 1;
    }
    std::printf("wrote %s\n", sweep::manifest_path(dir).c_str());
    return 0;
  }

  if (mode == "orchestrate" || mode == "local") {
    if (!trace_path.empty()) {
      if (mode == "orchestrate") {
        // Worker processes each need their own trace file; use
        // --mode=worker --trace=... per shard (see --mode=plan).
        std::fprintf(stderr,
                     "sweep_run: --trace needs --mode=local or "
                     "--mode=worker (one file per process)\n");
        return 2;
      }
      obs::install_tracer(&tracer);
    }
    sweep::OrchestrateOptions options;
    options.dir = dir;
    options.workers = static_cast<std::size_t>(args.get_int("workers", 2));
    if (mode == "orchestrate") options.worker_binary = self_exe(argv[0]);
    const auto outcome = sweep::orchestrate(spec, shards_total, options);
    if (!trace_path.empty()) {
      obs::install_tracer(nullptr);
      if (!tracer.export_json(trace_path)) {
        std::fprintf(stderr, "sweep_run: cannot write %s\n",
                     trace_path.c_str());
        return 1;
      }
      std::printf("wrote %s (%zu trace events)\n", trace_path.c_str(),
                  tracer.event_count());
    }
    if (!outcome.has_value()) return 2;
    std::printf("shards: %zu ran, %zu resumed as done, %zu failed\n",
                outcome->ran, outcome->skipped, outcome->failed);
    if (!outcome->ok()) return 1;
    return run_merge(dir, spec, shards_total, merged_path, render_series);
  }

  std::fprintf(stderr,
               "sweep_run: unknown --mode '%s' "
               "(orchestrate|local|worker|plan|merge)\n",
               mode.c_str());
  return 2;
}
